/**
 * @file
 * Figure 16 reproduction: Graphene-style on-demand I/O vs NosWalker
 * on K30' with L = 10 across walker counts.  Expected shape:
 * Graphene's storage-order iteration loses by a widening margin as
 * walkers get sparse (up to 80x in the paper).
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/graphene.hpp"
#include "bench_common.hpp"
#include "util/error.hpp"

using namespace noswalker;

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const std::uint64_t budget = env.budget_for(h);

    bench::print_table_header(
        "Fig 16: Graphene vs NosWalker (K30', L=10)",
        {"walkers", "Graphene", "NosWalker", "speedup"});
    for (std::uint64_t walkers = 64;
         walkers <= 4ULL * h.file->num_vertices(); walkers *= 8) {
        std::string ge_cell = "OOM";
        double tg = -1.0;
        try {
            // Graphene keeps all walker states in memory and can OOM
            // on large walker counts, like DrunkardMob.
            apps::BasicRandomWalk a1(10, h.file->num_vertices());
            baselines::GrapheneEngine<apps::BasicRandomWalk> ge(
                *h.file, *h.partition, budget);
            tg = ge.run(a1, walkers).modeled_seconds();
            ge_cell = bench::fmt_double(tg, 4);
        } catch (const util::BudgetExceeded &) {
        }
        apps::BasicRandomWalk a2(10, h.file->num_vertices());
        core::NosWalkerEngine<apps::BasicRandomWalk> nw(
            *h.file, *h.partition, env.noswalker_config(h));
        const double tn = nw.run(a2, walkers).modeled_seconds();
        bench::print_table_row(
            {bench::fmt_count(walkers), ge_cell,
             bench::fmt_double(tn, 4),
             tg < 0 ? "-" : bench::fmt_double(tg / tn, 1) + "x"});
    }
    return 0;
}
