/**
 * @file
 * Figure 14 reproduction: the optimization breakdown.  Starting from
 * the base implementation (GraphWalker-like workflow on NosWalker's
 * async-I/O substrate) the three optimizations are enabled one by
 * one — +Walker Management, +Shrink Block Size, +PreSample Edges —
 * and each stage reports time and I/O volume normalized to the base.
 *
 * Workloads follow the paper: basic RW 1B10/1B80/4B10 (scaled to
 * |V|·L combinations on K30'), the weighted K30W' run, the four
 * applications, and 1B10 on the flat G12'/α2.7' twins.
 *
 * Expected shape: +WM pays most with many walkers (4B10), +SBS pays
 * most on sparse-walker apps (PPR/SR/GC), +PS gives the largest win on
 * the weighted graph and weakens on the flat graphs.
 *
 * A final section ablates the prefetch depth (DESIGN.md §10) on the
 * 1B10 workload: modeled io_wait at depth 1 vs depth 4, same walk
 * output.  Pass `--json <path>` to archive both sections.
 */
#include <cstdio>
#include <functional>
#include <string>

#include "apps/basic_rw.hpp"
#include "apps/graphlet.hpp"
#include "apps/node2vec.hpp"
#include "apps/ppr.hpp"
#include "apps/rwd.hpp"
#include "apps/simrank.hpp"
#include "apps/weighted_rw.hpp"
#include "bench_common.hpp"
#include "storage/block_reader.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/memory_budget.hpp"

using namespace noswalker;

namespace {

bench::JsonReporter *reporter = nullptr;

struct StageResult {
    double time = 0.0;
    double io = 0.0;
    double cpu = 0.0;
};

/** The four breakdown stages in paper order. */
core::EngineConfig
stage_config(const core::EngineConfig &full, int stage)
{
    core::EngineConfig cfg = full;
    cfg.walker_management = stage >= 1;
    cfg.shrink_block = stage >= 2;
    cfg.presample = stage >= 3;
    return cfg;
}

template <typename App, typename MakeApp>
void
run_breakdown(bench::BenchEnv &env, const char *name,
              graph::DatasetId id, MakeApp &&make,
              std::uint64_t walkers)
{
    bench::GraphHandle &h = env.get(id);
    const core::EngineConfig full = env.noswalker_config(h);
    StageResult stages[4];
    for (int stage = 0; stage < 4; ++stage) {
        auto app = make(h);
        core::NosWalkerEngine<App> eng(*h.file, *h.partition,
                                       stage_config(full, stage));
        const auto s = eng.run(app, walkers);
        // The paper's breakdown runs are I/O bound; at twin scale the
        // measured CPU would swamp the modeled device time, so the
        // time bar uses the I/O term alone (EXPERIMENTS.md).
        stages[stage].time = s.io_busy_seconds / s.io_efficiency;
        stages[stage].io = static_cast<double>(s.total_io_bytes());
        stages[stage].cpu = s.cpu_seconds;
    }
    std::vector<std::string> row = {name};
    for (int stage = 0; stage < 4; ++stage) {
        row.push_back(
            bench::fmt_double(stages[stage].time / stages[0].time, 2) +
            "/" +
            bench::fmt_double(stages[stage].io / stages[0].io, 2));
    }
    // Measured stepping CPU of the full configuration — the term the
    // cohort kernel attacks; the normalized bars model I/O only.
    row.push_back(bench::fmt_double(stages[3].cpu, 3));
    bench::print_table_row(row);
    if (reporter != nullptr) {
        static const char *const kStageNames[4] = {
            "base", "walker_mgmt", "shrink_block", "presample"};
        for (int stage = 0; stage < 4; ++stage) {
            bench::JsonRecord record;
            record.engine = "noswalker";
            record.dataset = h.spec.name;
            record.workload =
                std::string(name) + "/" + kStageNames[stage];
            record.io_busy_seconds = stages[stage].time;
            record.cpu_seconds = stages[stage].cpu;
            record.extras = {
                {"normalized_time",
                 stages[stage].time / stages[0].time},
                {"normalized_io", stages[stage].io / stages[0].io},
            };
            reporter->add(std::move(record));
        }
    }
}

/** Depth-1 vs depth-4 io_wait on the 1B10 workload (DESIGN.md §10). */
void
run_prefetch_ablation(bench::BenchEnv &env)
{
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const graph::VertexId v = h.file->num_vertices();
    std::printf("\nPrefetch-depth ablation (1B10 on %s): modeled "
                "io_wait, identical walk output\n",
                h.spec.name.c_str());
    bench::print_table_header(
        "Prefetch", {"depth", "io_wait(s)", "modeled_s", "hits",
                     "mispredicts", "io_wait vs depth1"});
    double depth1_wait = 0.0;
    for (const unsigned depth : {1u, 4u}) {
        apps::BasicRandomWalk app(10, v);
        core::EngineConfig cfg = env.noswalker_config(h);
        cfg.prefetch_depth = depth;
        core::NosWalkerEngine<apps::BasicRandomWalk> eng(
            *h.file, *h.partition, cfg);
        const auto s = eng.run(app, v);
        if (depth == 1) {
            depth1_wait = s.io_wait_seconds;
        }
        const double ratio =
            depth1_wait > 0.0 ? s.io_wait_seconds / depth1_wait : 0.0;
        bench::print_table_row(
            {std::to_string(depth),
             bench::fmt_double(s.io_wait_seconds, 6),
             bench::fmt_double(s.modeled_seconds(), 6),
             bench::fmt_count(s.prefetch_hits),
             bench::fmt_count(s.prefetch_mispredicts),
             bench::fmt_double(ratio, 2)});
        if (reporter != nullptr) {
            bench::JsonRecord record;
            record.engine = s.engine;
            record.dataset = h.spec.name;
            record.workload =
                "1B10/prefetch_depth_" + std::to_string(depth);
            record.steps = s.steps;
            record.io_busy_seconds = s.io_busy_seconds;
            record.cpu_seconds = s.cpu_seconds;
            record.peak_memory = s.peak_memory;
            record.extras = {
                {"prefetch_depth", static_cast<double>(depth)},
                {"io_wait_seconds", s.io_wait_seconds},
                {"modeled_seconds", s.modeled_seconds()},
                {"io_wait_vs_depth1", ratio},
                {"prefetch_hits",
                 static_cast<double>(s.prefetch_hits)},
                {"prefetch_mispredicts",
                 static_cast<double>(s.prefetch_mispredicts)},
            };
            reporter->add(std::move(record));
        }
    }
}

/**
 * Lookahead plan-window ablation (DESIGN.md §13) on the out-of-core
 * budget: window 0 is the greedy hottest-first nomination, windows
 * 2/4/8 let the LoadPlanner rescore candidates with the one-step
 * walker-flow estimate and skip cache-resident candidates before
 * committing prefetches.  Each row runs against a fresh half-warm
 * SharedBlockCache (the service attaches one in production), which is
 * where greedy wastes speculative slots on blocks the cache would
 * serve for free.  Run for the first-order 1B10 workload and a
 * node2vec walk, whose two-block (current + candidate) access pattern
 * rewards flow-aware ordering.  The ratio uses the modeled I/O clock
 * (io_busy / io_efficiency + io_wait): at twin scale the measured
 * stepping CPU swamps the modeled device terms, exactly as the
 * breakdown bars above document.
 */
template <typename App, typename MakeApp>
void
run_plan_window_case(bench::BenchEnv &env, const char *name,
                     MakeApp &&make, std::uint64_t walkers,
                     bool shrink_block = true)
{
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    double greedy_io = 0.0;
    for (const unsigned window : {0u, 2u, 4u, 8u}) {
        // Fresh, identically half-warm cache per row (each run
        // publishes the blocks it loads, so reusing one cache would
        // leak residency across rows).
        util::MemoryBudget unbudgeted(0);
        storage::SharedBlockCache cache(h.file->edge_region_bytes() / 2);
        storage::BlockReader warm_reader(*h.file, unbudgeted,
                                         8ULL << 20, &cache);
        for (std::uint32_t id = 0; id < h.partition->num_blocks();
             id += 2) {
            storage::BlockBuffer buf;
            warm_reader.load_coarse(h.partition->block(id), buf);
            buf.release_storage();
        }
        auto app = make(h);
        core::EngineConfig cfg = env.noswalker_config(h);
        cfg.prefetch_depth = 4;
        cfg.plan_window = window;
        // The second-order case runs all-coarse (GraSorw's regime:
        // the contested resource is full-block load order, and fine
        // page reads sit below the planner's granularity).
        cfg.shrink_block = shrink_block;
        core::NosWalkerEngine<App> eng(*h.file, *h.partition, cfg);
        eng.set_shared_cache(&cache);
        const auto s = eng.run(app, walkers);
        const double io_model =
            s.io_busy_seconds / s.io_efficiency + s.io_wait_seconds;
        if (window == 0) {
            greedy_io = io_model;
        }
        const double ratio =
            greedy_io > 0.0 ? io_model / greedy_io : 0.0;
        bench::print_table_row(
            {std::string(name) + " W=" + std::to_string(window),
             bench::fmt_double(io_model, 6),
             bench::fmt_double(s.io_wait_seconds, 6),
             bench::fmt_count(s.planned_loads),
             bench::fmt_count(s.plan_cache_credits),
             bench::fmt_double(ratio, 3)});
        if (reporter != nullptr) {
            bench::JsonRecord record;
            record.engine = s.engine;
            record.dataset = h.spec.name;
            record.workload = std::string(name) + "/plan_window_" +
                              std::to_string(window);
            record.steps = s.steps;
            record.io_busy_seconds = s.io_busy_seconds;
            record.cpu_seconds = s.cpu_seconds;
            record.peak_memory = s.peak_memory;
            record.extras = {
                {"plan_window", static_cast<double>(window)},
                {"modeled_io_seconds", io_model},
                {"modeled_io_vs_greedy", ratio},
                {"io_wait_seconds", s.io_wait_seconds},
                {"planned_loads",
                 static_cast<double>(s.planned_loads)},
                {"plan_rescores",
                 static_cast<double>(s.plan_rescores)},
                {"plan_cache_credits",
                 static_cast<double>(s.plan_cache_credits)},
                {"cache_hit_blocks",
                 static_cast<double>(s.cache_hit_blocks)},
                {"prefetch_hits",
                 static_cast<double>(s.prefetch_hits)},
                {"prefetch_mispredicts",
                 static_cast<double>(s.prefetch_mispredicts)},
            };
            reporter->add(std::move(record));
        }
    }
}

void
run_plan_window_ablation(bench::BenchEnv &env)
{
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const graph::VertexId v = h.file->num_vertices();
    std::printf("\nPlan-window ablation on %s (out-of-core budget, "
                "depth-4 pipeline, half-warm shared cache): identical "
                "walk output per case\n",
                h.spec.name.c_str());
    bench::print_table_header(
        "PlanWindow", {"case", "io_model_s", "io_wait(s)", "planned",
                       "cache_credits", "io vs W=0"});
    run_plan_window_case<apps::BasicRandomWalk>(
        env, "1B10",
        [](bench::GraphHandle &hh) {
            return apps::BasicRandomWalk(10, hh.file->num_vertices());
        },
        v);
    run_plan_window_case<apps::Node2Vec>(
        env, "n2v",
        [](bench::GraphHandle &hh) {
            return apps::Node2Vec(2.0, 0.5, 10,
                                  hh.file->num_vertices(), 1);
        },
        v, /*shrink_block=*/false);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json = bench::JsonReporter::from_args(argc, argv);
    reporter = &json;
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    std::printf("Figure 14: cells are normalized time / normalized I/O "
                "(base = 1.00)\n");
    bench::print_table_header(
        "Fig 14", {"Workload", "Base", "+WalkerMgmt", "+ShrinkBlock",
                   "+PreSample", "cpu_s"});

    const graph::VertexId v =
        env.get(graph::DatasetId::kKron30).file->num_vertices();

    const auto basic = [](std::uint32_t length) {
        return [length](bench::GraphHandle &h) {
            return apps::BasicRandomWalk(length,
                                         h.file->num_vertices());
        };
    };

    run_breakdown<apps::BasicRandomWalk>(
        env, "1B10", graph::DatasetId::kKron30, basic(10), v);
    run_breakdown<apps::BasicRandomWalk>(
        env, "1B80", graph::DatasetId::kKron30, basic(80), v);
    run_breakdown<apps::BasicRandomWalk>(
        env, "4B10", graph::DatasetId::kKron30, basic(10), 4ULL * v);
    run_breakdown<apps::WeightedRandomWalk>(
        env, "K30W", graph::DatasetId::kKron30W,
        [](bench::GraphHandle &h) {
            return apps::WeightedRandomWalk(20, h.file->num_vertices());
        },
        env.get(graph::DatasetId::kKron30W).file->num_vertices());

    {
        bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
        run_breakdown<apps::RandomWalkDomination>(
            env, "RWD", graph::DatasetId::kKron30,
            [](bench::GraphHandle &hh) {
                return apps::RandomWalkDomination(
                    hh.file->num_vertices(), 6, false);
            },
            h.file->num_vertices());
        run_breakdown<apps::GraphletConcentration>(
            env, "GC", graph::DatasetId::kKron30,
            [](bench::GraphHandle &hh) {
                return apps::GraphletConcentration(
                    hh.file->num_vertices(),
                    std::max<std::uint64_t>(
                        64, hh.file->num_vertices() / 100),
                    3);
            },
            std::max<std::uint64_t>(64, h.file->num_vertices() / 100));
        run_breakdown<apps::PersonalizedPageRank>(
            env, "PPR", graph::DatasetId::kKron30,
            [](bench::GraphHandle &hh) {
                const graph::VertexId n = hh.file->num_vertices();
                return apps::PersonalizedPageRank(
                    {n / 7, n / 3, n / 2, n - 1}, 200, 10);
            },
            4 * 200);
        run_breakdown<apps::SimRank>(
            env, "SR", graph::DatasetId::kKron30,
            [](bench::GraphHandle &hh) {
                const graph::VertexId n = hh.file->num_vertices();
                return apps::SimRank(n / 5, n / 2, 200, 11);
            },
            2 * 200);
    }

    run_breakdown<apps::BasicRandomWalk>(
        env, "G12", graph::DatasetId::kG12, basic(10),
        env.get(graph::DatasetId::kG12).file->num_vertices());
    run_breakdown<apps::BasicRandomWalk>(
        env, "a2.7", graph::DatasetId::kAlpha27, basic(10),
        env.get(graph::DatasetId::kAlpha27).file->num_vertices());

    std::printf("\nPaper (1B10): normalized time 1/0.81/0.60/0.20, "
                "normalized I/O 1/0.86/0.52/0.21.\n");

    run_prefetch_ablation(env);
    run_plan_window_ablation(env);
    return 0;
}
