/**
 * @file
 * Figure 4 reproduction: GraphWalker's long tail.  Basic RW with one
 * walker per vertex on K30' and K31'; after each block I/O we report
 * the number of unterminated walkers (the paper's line) and the
 * fraction of the loaded block actually accessed at page granularity
 * (the paper's dots).  Expected shape: the accessed fraction collapses
 * as walkers thin out, while a long tail of I/Os serves few walkers.
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"

using namespace noswalker;

namespace {

void
run_trace(bench::BenchEnv &env, graph::DatasetId id)
{
    bench::GraphHandle &h = env.get(id);
    const std::uint64_t budget = env.budget_for(h);
    apps::BasicRandomWalk app(10, h.file->num_vertices());
    baselines::GraphWalkerEngine<apps::BasicRandomWalk> eng(
        *h.file, *h.partition, budget);
    std::vector<baselines::GraphWalkerLoadTrace> trace;
    eng.set_trace(&trace);
    const auto stats = eng.run(app, h.file->num_vertices());

    bench::print_table_header(
        "Fig 4 (" + h.spec.name + ")",
        {"io#", "unterminated", "accessed%"});
    // Print ~20 evenly spaced trace points plus the tail.
    const std::size_t stride =
        trace.size() > 20 ? trace.size() / 20 : 1;
    for (std::size_t i = 0; i < trace.size(); i += stride) {
        bench::print_table_row(
            {std::to_string(trace[i].io_index),
             bench::fmt_count(trace[i].unterminated_walkers),
             bench::fmt_double(trace[i].accessed_fraction * 100.0, 1)});
    }
    if (!trace.empty()) {
        const auto &last = trace.back();
        bench::print_table_row(
            {std::to_string(last.io_index),
             bench::fmt_count(last.unterminated_walkers),
             bench::fmt_double(last.accessed_fraction * 100.0, 1)});
    }

    // The long-tail summary the paper quotes: the last 30 % of I/Os
    // serve how many walkers?
    if (trace.size() > 3) {
        const std::size_t tail_start = trace.size() * 7 / 10;
        const double tail_walkers =
            static_cast<double>(trace[tail_start].unterminated_walkers);
        const double total =
            static_cast<double>(trace.front().unterminated_walkers);
        std::printf("last 30%% of I/Os executed the final %.1f%% of "
                    "walkers (paper: ~3%%); total I/Os %zu, steps %llu\n",
                    100.0 * tail_walkers / total, trace.size(),
                    static_cast<unsigned long long>(stats.steps));
    }
}

} // namespace

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    run_trace(env, graph::DatasetId::kKron30);
    run_trace(env, graph::DatasetId::kKron31);
    return 0;
}
