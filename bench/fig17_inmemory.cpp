/**
 * @file
 * Figure 17 reproduction: NosWalker vs in-memory systems.
 *
 *  - ThunderRW-like InMemoryEngine on K30': the "Walk" bar is the
 *    walk phase only, the "Total" bar includes the load phase.
 *    Expected shape: in-memory walking beats NosWalker (~1.5x in the
 *    paper), but once the ~75 %-of-runtime load phase counts,
 *    NosWalker (which pipelines loading with walking) wins overall.
 *  - KnightKing cluster model (4 nodes, 10 Gbps) on TW'/YH':
 *    computation is competitive, but loading dominates its total.
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/inmemory.hpp"
#include "baselines/knightking_model.hpp"
#include "bench_common.hpp"

using namespace noswalker;

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor

    {
        bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
        const std::uint64_t walkers = h.file->num_vertices();
        bench::print_table_header(
            "Fig 17 (left): ThunderRW-like vs NosWalker on K30'",
            {"System", "walk(s)", "total(s)"});
        apps::BasicRandomWalk a1(10, h.file->num_vertices());
        baselines::InMemoryEngine<apps::BasicRandomWalk> im(*h.file);
        const auto si = im.run(a1, walkers);
        bench::print_table_row(
            {"ThunderRW~", bench::fmt_double(si.cpu_seconds, 4),
             bench::fmt_double(si.modeled_seconds(), 4)});
        apps::BasicRandomWalk a2(10, h.file->num_vertices());
        core::NosWalkerEngine<apps::BasicRandomWalk> nw(
            *h.file, *h.partition, env.noswalker_config(h));
        const auto sn = nw.run(a2, walkers);
        bench::print_table_row(
            {"NosWalker", bench::fmt_double(sn.modeled_seconds(), 4),
             bench::fmt_double(sn.modeled_seconds(), 4)});
        // At twin scale measured CPU dwarfs the modeled device time;
        // the I/O-bound estimate is the paper-regime comparison.
        const double nw_io = sn.io_busy_seconds / sn.io_efficiency;
        bench::print_table_row(
            {"NosWalker/io", bench::fmt_double(nw_io, 4),
             bench::fmt_double(nw_io, 4)});
        std::printf("load fraction of ThunderRW~ total: %.0f%% "
                    "(paper: ~75%%)\n",
                    100.0 * si.io_busy_seconds / si.modeled_seconds());
    }

    {
        bench::print_table_header(
            "Fig 17 (right): KnightKing model (4 nodes, 10 Gbps)",
            {"Dataset", "System", "walk(s)", "total(s)"});
        const graph::DatasetId graphs[] = {graph::DatasetId::kTwitter,
                                           graph::DatasetId::kYahoo};
        for (const graph::DatasetId id : graphs) {
            bench::GraphHandle &h = env.get(id);
            const std::uint64_t walkers = h.file->num_vertices() / 2;
            apps::BasicRandomWalk a1(10, h.file->num_vertices());
            baselines::KnightKingModelEngine<apps::BasicRandomWalk> kk(
                *h.file, baselines::ClusterModel{});
            const auto rk = kk.run(a1, walkers);
            bench::print_table_row(
                {h.spec.name, "KnightKing",
                 bench::fmt_double(rk.walk_seconds(), 4),
                 bench::fmt_double(rk.total_seconds(), 4)});
            apps::BasicRandomWalk a2(10, h.file->num_vertices());
            core::NosWalkerEngine<apps::BasicRandomWalk> nw(
                *h.file, *h.partition, env.noswalker_config(h));
            const auto sn = nw.run(a2, walkers);
            const double nw_io = sn.io_busy_seconds / sn.io_efficiency;
            bench::print_table_row(
                {h.spec.name, "NosWalker/io",
                 bench::fmt_double(nw_io, 4),
                 bench::fmt_double(nw_io, 4)});
        }
    }
    return 0;
}
