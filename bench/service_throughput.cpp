/**
 * @file
 * Walk service throughput/latency sweep (the serving-layer companion
 * to the engine figures): a closed-loop client fires a fixed pool of
 * walk requests at a WalkService over the K30' twin and reports
 * requests/second plus p50/p99 modeled latency across worker counts
 * and coalescing batch sizes.
 *
 * Modeled latency = queue wait (measured) + the modeled run time of
 * the coalesced batch serving the request (SSD cost model + measured
 * CPU, DESIGN.md §2) — the same policy the engine benches use, so the
 * absolute numbers are comparable to the per-figure results.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/walk_service.hpp"
#include "util/timer.hpp"

namespace noswalker::bench {
namespace {

/** The closed-loop request pool: a mixed endpoint/path/top-k workload. */
std::vector<service::WalkRequest>
make_workload(const GraphHandle &handle, std::size_t count)
{
    const graph::VertexId v = handle.file->num_vertices();
    std::vector<service::WalkRequest> requests;
    requests.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        service::WalkRequest r;
        r.seed = 10'000 + i;
        r.tenant = i % 4;
        r.length = 8 + static_cast<std::uint32_t>(i % 9);
        switch (i % 3) {
        case 0:
            r.kind = service::WalkKind::kEndpoints;
            r.starts = {static_cast<graph::VertexId>((17 * i + 1) % v),
                        static_cast<graph::VertexId>((31 * i + 5) % v)};
            r.walks_per_start = 8;
            break;
        case 1:
            r.kind = service::WalkKind::kPaths;
            r.starts = {static_cast<graph::VertexId>((13 * i + 3) % v)};
            r.walks_per_start = 4;
            break;
        default:
            r.kind = service::WalkKind::kVisitCounts;
            r.starts = {static_cast<graph::VertexId>((7 * i + 11) % v)};
            r.walks_per_start = 16;
            r.top_k = 16;
            break;
        }
        requests.push_back(std::move(r));
    }
    return requests;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty()) {
        return 0.0;
    }
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

struct SweepPoint {
    unsigned workers;
    std::size_t max_batch;
    unsigned shards = 1;
    double wall_seconds = 0.0;
    double requests_per_second = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    std::uint64_t batches = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t steps = 0;
    double io_busy_seconds = 0.0;
    double cpu_seconds = 0.0;
    std::uint64_t peak_memory = 0;
    /** p99 across per-shard modeled seconds, one sample per shard per
     *  sharded batch run (0 on single-engine points). */
    double shard_p99 = 0.0;
};

SweepPoint
run_point(BenchEnv &env, GraphHandle &handle, unsigned workers,
          std::size_t max_batch, unsigned shards,
          const std::vector<service::WalkRequest> &workload)
{
    service::ServiceConfig cfg;
    cfg.num_workers = workers;
    cfg.max_batch = max_batch;
    cfg.num_shards = shards;
    cfg.batch_window_seconds = max_batch > 1 ? 0.001 : 0.0;
    // Sharded runners duplicate the per-engine floor (one CSR index
    // copy and buffer pair per shard), so the budget scales with both.
    cfg.memory_budget =
        env.budget_for(handle) * workers * shards + (16ULL << 20);
    cfg.cache_bytes = cfg.memory_budget / 4;
    cfg.block_bytes = handle.partition->max_block_bytes();

    SweepPoint point;
    point.workers = workers;
    point.max_batch = max_batch;
    point.shards = shards;

    service::WalkService svc(*handle.file, *handle.partition, cfg);
    util::Timer wall;
    std::vector<service::WalkTicket> tickets;
    tickets.reserve(workload.size());
    for (const service::WalkRequest &request : workload) {
        tickets.push_back(svc.submit(request));
    }
    std::vector<double> latencies;
    latencies.reserve(tickets.size());
    std::uint64_t ok = 0;
    for (service::WalkTicket &ticket : tickets) {
        service::WalkResult result = ticket.get();
        if (result.ok()) {
            ++ok;
            latencies.push_back(result.modeled_latency_seconds);
            point.steps += result.stats.steps;
            point.io_busy_seconds += result.stats.io_busy_seconds;
            point.cpu_seconds += result.stats.cpu_seconds;
            point.peak_memory =
                std::max(point.peak_memory, result.stats.peak_memory);
        }
    }
    point.wall_seconds = wall.seconds();
    point.requests_per_second =
        static_cast<double>(ok) / point.wall_seconds;
    point.p50 = percentile(latencies, 0.50);
    point.p99 = percentile(latencies, 0.99);
    const auto counters = svc.counters();
    point.batches = counters.batches;
    point.cache_hits = counters.cache_hits;
    point.shard_p99 = percentile(svc.shard_modeled_samples(), 0.99);
    return point;
}

} // namespace
} // namespace noswalker::bench

int
main(int argc, char **argv)
{
    using namespace noswalker;
    using namespace noswalker::bench;

    JsonReporter json = JsonReporter::from_args(argc, argv);
    // --slo-p99 <seconds>: gate the sweep on modeled tail latency.
    // Any point whose p99 exceeds the threshold fails the run (exit 1),
    // so CI can hold the serving layer to a latency objective the same
    // way it holds correctness to the test suite.
    double slo_p99 = 0.0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--slo-p99") {
            slo_p99 = std::strtod(argv[i + 1], nullptr);
            if (slo_p99 <= 0.0) {
                std::fprintf(stderr,
                             "--slo-p99 needs a positive threshold "
                             "in seconds, got %s\n",
                             argv[i + 1]);
                return 2;
            }
        }
    }
    BenchEnv env;
    GraphHandle &handle = env.get(graph::DatasetId::kKron30);
    std::printf("walk service throughput on %s (scale %u): "
                "%llu vertices, %llu edges\n\n",
                handle.spec.name.c_str(), env.scale(),
                static_cast<unsigned long long>(
                    handle.file->num_vertices()),
                static_cast<unsigned long long>(
                    handle.reference.num_edges()));

    const std::size_t kRequests = 96;
    const auto workload = make_workload(handle, kRequests);
    std::vector<std::string> slo_violations;

    print_table_header(
        "Closed-loop sweep (" + std::to_string(kRequests) + " requests)",
        {"workers", "max_batch", "shards", "req/s", "req/s/shard",
         "p50 lat(s)", "p99 lat(s)", "shard p99(s)", "batches",
         "cache hits", "steps"});
    for (const unsigned workers : {1u, 2u, 4u}) {
        for (const std::size_t max_batch : {std::size_t{1}, std::size_t{8}}) {
            // Sharded backends only pay off for large coalesced runs;
            // sweep them at the batched point to keep the grid small.
            const std::vector<unsigned> shard_counts =
                max_batch > 1 ? std::vector<unsigned>{1u, 2u}
                              : std::vector<unsigned>{1u};
            for (const unsigned shards : shard_counts) {
                const SweepPoint p = run_point(env, handle, workers,
                                               max_batch, shards,
                                               workload);
                const double per_shard =
                    p.requests_per_second /
                    static_cast<double>(p.shards);
                print_table_row({std::to_string(p.workers),
                                 std::to_string(p.max_batch),
                                 std::to_string(p.shards),
                                 fmt_double(p.requests_per_second, 1),
                                 fmt_double(per_shard, 1),
                                 fmt_double(p.p50, 4),
                                 fmt_double(p.p99, 4),
                                 fmt_double(p.shard_p99, 4),
                                 fmt_count(p.batches),
                                 fmt_count(p.cache_hits),
                                 fmt_count(p.steps)});
                JsonRecord r;
                r.engine = "WalkService";
                r.dataset = handle.spec.name;
                r.workload = "workers=" + std::to_string(p.workers) +
                             ",max_batch=" + std::to_string(p.max_batch) +
                             ",shards=" + std::to_string(p.shards);
                r.steps = p.steps;
                r.steps_per_second = p.wall_seconds > 0.0
                                         ? static_cast<double>(p.steps) /
                                               p.wall_seconds
                                         : 0.0;
                r.io_busy_seconds = p.io_busy_seconds;
                r.cpu_seconds = p.cpu_seconds;
                r.peak_memory = p.peak_memory;
                r.extras.emplace_back("requests_per_second",
                                      p.requests_per_second);
                r.extras.emplace_back("num_shards",
                                      static_cast<double>(p.shards));
                r.extras.emplace_back("req_per_shard_per_second",
                                      per_shard);
                r.extras.emplace_back("p50_latency_seconds", p.p50);
                r.extras.emplace_back("p99_latency_seconds", p.p99);
                r.extras.emplace_back("shard_p99_modeled_seconds",
                                      p.shard_p99);
                json.add(std::move(r));
                if (slo_p99 > 0.0 && p.p99 > slo_p99) {
                    slo_violations.push_back(
                        "workers=" + std::to_string(p.workers) +
                        " max_batch=" + std::to_string(p.max_batch) +
                        " shards=" + std::to_string(p.shards) +
                        " p99=" + fmt_double(p.p99, 4) + "s");
                }
            }
        }
    }
    std::printf("\nbatching trades per-request latency for shared block "
                "loads; extra workers raise throughput until the shared "
                "budget (or the device) saturates.\n");
    if (slo_p99 > 0.0) {
        if (!slo_violations.empty()) {
            std::fprintf(stderr,
                         "\nSLO VIOLATION: %zu sweep point(s) exceed "
                         "the p99 modeled-latency objective of %.4fs:\n",
                         slo_violations.size(), slo_p99);
            for (const std::string &v : slo_violations) {
                std::fprintf(stderr, "  %s\n", v.c_str());
            }
            return 1;
        }
        std::printf("\nall sweep points meet the p99 modeled-latency "
                    "objective of %.4fs.\n",
                    slo_p99);
    }
    return 0;
}
