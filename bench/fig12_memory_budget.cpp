/**
 * @file
 * Figure 12 reproduction.
 *
 * (a) NosWalker speedup over GraphWalker on K30' as the memory budget
 *     varies from 10 % to 50 % of the graph, for several walker
 *     counts (the paper's 0.5B/1B/2B/4B scale to |V|/2 .. 4|V|).
 *     Expected shape: speedup rises sharply from 10 % to 20 % (the
 *     pre-sample pool starves at 10 %) and grows with walker count.
 *
 * (b,c) The same workloads on the RAID-0 cost model (3.4 GiB/s seq but
 *     only 150k IOPS): NosWalker keeps a 15–40x edge even though its
 *     fine-grained mode is IOPS-hungry.
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "storage/raid_device.hpp"

using namespace noswalker;

namespace {

double
run_noswalker(bench::GraphHandle &h, std::uint64_t budget,
              std::uint64_t walkers, std::uint32_t length)
{
    apps::BasicRandomWalk app(length, h.file->num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(
        budget, h.partition->target_block_bytes());
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(*h.file,
                                                     *h.partition, cfg);
    return eng.run(app, walkers).modeled_seconds();
}

double
run_graphwalker(bench::GraphHandle &h, std::uint64_t budget,
                std::uint64_t walkers, std::uint32_t length)
{
    apps::BasicRandomWalk app(length, h.file->num_vertices());
    baselines::GraphWalkerEngine<apps::BasicRandomWalk> eng(
        *h.file, *h.partition, budget);
    return eng.run(app, walkers).modeled_seconds();
}

} // namespace

int
main()
{
    bench::BenchEnv env;
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const graph::VertexId v = h.file->num_vertices();

    // (a) budget sweep.
    bench::print_table_header(
        "Fig 12(a): NosWalker speedup vs GraphWalker, K30'",
        {"budget%", "w=|V|/2", "w=|V|", "w=2|V|", "w=4|V|"});
    const std::uint64_t walker_counts[] = {v / 2, v, 2ULL * v, 4ULL * v};
    for (int pct = 10; pct <= 50; pct += 10) {
        std::vector<std::string> row = {std::to_string(pct) + "%"};
        const std::uint64_t budget = std::max(
            bench::BenchEnv::floor_for(h),
            static_cast<std::uint64_t>(pct / 100.0 *
                                       static_cast<double>(
                                           h.file->file_bytes())));
        for (const std::uint64_t walkers : walker_counts) {
            const double gw = run_graphwalker(h, budget, walkers, 10);
            const double nw = run_noswalker(h, budget, walkers, 10);
            row.push_back(bench::fmt_double(gw / nw, 1) + "x");
        }
        bench::print_table_row(row);
    }

    // (b, c) RAID-0: rebuild K30' on the array cost model.
    auto raid = storage::Raid0Device::paper_array();
    graph::GraphFile::write(h.reference, *raid);
    graph::GraphFile raid_file(*raid);
    graph::BlockPartition raid_part(
        raid_file, h.partition->target_block_bytes());
    bench::GraphHandle raid_handle;
    raid_handle.spec = h.spec;

    const std::uint64_t budget = std::max(
        bench::BenchEnv::floor_for(h),
        static_cast<std::uint64_t>(0.12 * static_cast<double>(
                                              h.file->file_bytes())));

    bench::print_table_header(
        "Fig 12(b): RAID-0, walker sweep (L=10)",
        {"walkers", "GraphWalker", "NosWalker", "speedup"});
    for (std::uint64_t walkers = 64; walkers <= 4ULL * v; walkers *= 16) {
        apps::BasicRandomWalk a1(10, v);
        baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(
            raid_file, raid_part, budget);
        const double tg = gw.run(a1, walkers).modeled_seconds();
        apps::BasicRandomWalk a2(10, v);
        core::EngineConfig cfg = core::EngineConfig::full(
            budget, raid_part.target_block_bytes());
        core::NosWalkerEngine<apps::BasicRandomWalk> nw(raid_file,
                                                        raid_part, cfg);
        const double tn = nw.run(a2, walkers).modeled_seconds();
        bench::print_table_row({bench::fmt_count(walkers),
                                bench::fmt_double(tg, 4),
                                bench::fmt_double(tn, 4),
                                bench::fmt_double(tg / tn, 1) + "x"});
    }

    bench::print_table_header(
        "Fig 12(c): RAID-0, length sweep (walkers=|V|/8)",
        {"length", "GraphWalker", "NosWalker", "speedup"});
    for (std::uint32_t length = 16; length <= 256; length *= 4) {
        apps::BasicRandomWalk a1(length, v);
        baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(
            raid_file, raid_part, budget);
        const double tg = gw.run(a1, v / 8).modeled_seconds();
        apps::BasicRandomWalk a2(length, v);
        core::EngineConfig cfg = core::EngineConfig::full(
            budget, raid_part.target_block_bytes());
        core::NosWalkerEngine<apps::BasicRandomWalk> nw(raid_file,
                                                        raid_part, cfg);
        const double tn = nw.run(a2, v / 8).modeled_seconds();
        bench::print_table_row({std::to_string(length),
                                bench::fmt_double(tg, 4),
                                bench::fmt_double(tn, 4),
                                bench::fmt_double(tg / tn, 1) + "x"});
    }
    return 0;
}
