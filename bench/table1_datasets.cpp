/**
 * @file
 * Table 1 reproduction: statistics of the dataset twins next to the
 * paper's originals.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace noswalker;

namespace {

struct PaperRow {
    graph::DatasetId id;
    const char *vertices;
    const char *edges;
    const char *csr;
};

const PaperRow kPaperRows[] = {
    {graph::DatasetId::kTwitter, "61.6M", "1.5B", "6.2GiB"},
    {graph::DatasetId::kYahoo, "1.4B", "6.6B", "37.6GiB"},
    {graph::DatasetId::kKron30, "1B", "32B", "136GiB"},
    {graph::DatasetId::kKron31, "2B", "64B", "272GiB"},
    {graph::DatasetId::kCrawlWeb, "3.5B", "128B", "540GiB"},
    {graph::DatasetId::kKron30W, "1B", "32B", "384GiB"},
    {graph::DatasetId::kG12, "2.7B", "33B", "144GiB"},
    {graph::DatasetId::kAlpha27, "4.2B", "27B", "134GiB"},
};

} // namespace

int
main()
{
    bench::BenchEnv env;
    std::printf("Table 1: dataset statistics (twins at scale %u; paper "
                "values in parentheses)\n",
                env.scale());
    bench::print_table_header(
        "Table 1", {"Dataset", "|V|", "|E|", "on-disk", "paper |V|",
                    "paper |E|", "paper CSR"});
    for (const PaperRow &row : kPaperRows) {
        bench::GraphHandle &h = env.get(row.id);
        bench::print_table_row(
            {h.spec.name, bench::fmt_count(h.file->num_vertices()),
             bench::fmt_count(h.file->num_edges()),
             bench::fmt_bytes(h.file->file_bytes()), row.vertices,
             row.edges, row.csr});
    }
    std::printf("\nK30W' carries weights + pre-built alias tables, "
                "inflating its on-disk size ~4x over K30' (paper: "
                "136 GiB -> 384 GiB, ~2.8x).\n");
    return 0;
}
