/**
 * @file
 * Ablations over NosWalker's own design knobs (DESIGN.md §5, beyond
 * the paper's figures): pre-sample quota, low-degree direct-reserve
 * cutoff, the fine-mode α factor, pre-sample pool share, the
 * loaded-block-as-presamples optimization (§3.3.5), and the parallel
 * stepping path (step_threads scaling on an in-cache workload).
 *
 * Pass `--json <path>` to also write the results as a JSON array
 * (scripts/bench_snapshot.sh).
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "bench_common.hpp"

using namespace noswalker;

namespace {

bench::JsonReporter *reporter = nullptr;

void
run_with(bench::GraphHandle &h,
         const core::EngineConfig &cfg, const std::string &label)
{
    apps::BasicRandomWalk app(10, h.file->num_vertices());
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(*h.file,
                                                     *h.partition, cfg);
    const auto s = eng.run(app, h.file->num_vertices() / 2);
    bench::print_table_row(
        {label, bench::fmt_double(s.modeled_seconds(), 4),
         bench::fmt_bytes(s.total_io_bytes()),
         bench::fmt_double(s.edges_per_step(), 2),
         bench::fmt_count(s.presample_steps),
         bench::fmt_count(s.stalls)});
    if (reporter != nullptr) {
        reporter->add(h.spec.name, label, s);
    }
}

/**
 * Step-thread scaling with I/O out of the picture: one giant block
 * (the whole edge region), unlimited budget, a large walker batch.
 * cpu_seconds is the metric — on a multi-core host it should drop
 * nearly linearly until the core count caps it.
 */
void
step_thread_ablation(bench::GraphHandle &h)
{
    graph::BlockPartition whole(*h.file, h.file->edge_region_bytes());
    bench::print_table_header(
        "Ablation: step_threads (in-cache, single block)",
        {"threads", "cpu(s)", "speedup", "steps", "steps/cpu-s"});
    const std::uint64_t walkers = std::uint64_t{1} << 17;
    double base_cpu = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        core::EngineConfig cfg = core::EngineConfig::full(
            0, h.file->edge_region_bytes());
        cfg.step_threads = threads;
        cfg.max_walkers = std::uint64_t{1} << 15;
        apps::BasicRandomWalk app(20, h.file->num_vertices());
        core::NosWalkerEngine<apps::BasicRandomWalk> eng(*h.file, whole,
                                                         cfg);
        const auto s = eng.run(app, walkers);
        if (threads == 1) {
            base_cpu = s.cpu_seconds;
        }
        const double speedup =
            s.cpu_seconds > 0.0 ? base_cpu / s.cpu_seconds : 0.0;
        bench::print_table_row(
            {std::to_string(threads),
             bench::fmt_double(s.cpu_seconds, 3),
             bench::fmt_double(speedup, 2), bench::fmt_count(s.steps),
             bench::fmt_count(static_cast<std::uint64_t>(
                 s.cpu_seconds > 0.0
                     ? static_cast<double>(s.steps) / s.cpu_seconds
                     : 0.0))});
        if (reporter != nullptr) {
            bench::JsonRecord r;
            r.engine = s.engine;
            r.dataset = h.spec.name;
            r.workload = "step_threads=" + std::to_string(threads);
            r.steps = s.steps;
            r.steps_per_second =
                s.cpu_seconds > 0.0
                    ? static_cast<double>(s.steps) / s.cpu_seconds
                    : 0.0;
            r.io_busy_seconds = s.io_busy_seconds;
            r.cpu_seconds = s.cpu_seconds;
            r.peak_memory = s.peak_memory;
            r.extras.emplace_back("speedup_vs_1_thread", speedup);
            reporter->add(std::move(r));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json = bench::JsonReporter::from_args(argc, argv);
    reporter = &json;
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const core::EngineConfig base = env.noswalker_config(h);
    const std::vector<std::string> cols = {
        "Config", "time(s)", "io", "edges/step", "ps-steps", "stalls"};

    bench::print_table_header("Ablation: base pre-sample quota k", cols);
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
        core::EngineConfig cfg = base;
        cfg.presamples_per_vertex = k;
        run_with(h, cfg, "k=" + std::to_string(k));
    }

    bench::print_table_header("Ablation: low-degree cutoff", cols);
    for (std::uint32_t cutoff : {0u, 1u, 2u, 4u, 8u}) {
        core::EngineConfig cfg = base;
        cfg.low_degree_cutoff = cutoff;
        run_with(h, cfg, "cutoff=" + std::to_string(cutoff));
    }

    bench::print_table_header("Ablation: fine-mode alpha", cols);
    for (double alpha : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        core::EngineConfig cfg = base;
        cfg.alpha = alpha;
        run_with(h, cfg, "alpha=" + bench::fmt_double(alpha, 0));
    }

    bench::print_table_header("Ablation: pre-sample pool share", cols);
    for (double share : {0.1, 0.2, 0.4, 0.6}) {
        core::EngineConfig cfg = base;
        cfg.presample_memory_fraction = share;
        run_with(h, cfg, "share=" + bench::fmt_double(share, 1));
    }

    bench::print_table_header("Ablation: loaded-block-as-presamples",
                              cols);
    {
        core::EngineConfig cfg = base;
        run_with(h, cfg, "on");
        cfg.use_loaded_block = false;
        run_with(h, cfg, "off");
    }

    step_thread_ablation(h);
    return 0;
}
