/**
 * @file
 * Ablations over NosWalker's own design knobs (DESIGN.md §5, beyond
 * the paper's figures): pre-sample quota, low-degree direct-reserve
 * cutoff, the fine-mode α factor, pre-sample pool share, and the
 * loaded-block-as-presamples optimization (§3.3.5).
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "bench_common.hpp"

using namespace noswalker;

namespace {

void
run_with(bench::BenchEnv &env, bench::GraphHandle &h,
         const core::EngineConfig &cfg, const std::string &label)
{
    apps::BasicRandomWalk app(10, h.file->num_vertices());
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(*h.file,
                                                     *h.partition, cfg);
    const auto s = eng.run(app, h.file->num_vertices() / 2);
    bench::print_table_row(
        {label, bench::fmt_double(s.modeled_seconds(), 4),
         bench::fmt_bytes(s.total_io_bytes()),
         bench::fmt_double(s.edges_per_step(), 2),
         bench::fmt_count(s.presample_steps),
         bench::fmt_count(s.stalls)});
}

} // namespace

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const core::EngineConfig base = env.noswalker_config(h);
    const std::vector<std::string> cols = {
        "Config", "time(s)", "io", "edges/step", "ps-steps", "stalls"};

    bench::print_table_header("Ablation: base pre-sample quota k", cols);
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
        core::EngineConfig cfg = base;
        cfg.presamples_per_vertex = k;
        run_with(env, h, cfg, "k=" + std::to_string(k));
    }

    bench::print_table_header("Ablation: low-degree cutoff", cols);
    for (std::uint32_t cutoff : {0u, 1u, 2u, 4u, 8u}) {
        core::EngineConfig cfg = base;
        cfg.low_degree_cutoff = cutoff;
        run_with(env, h, cfg, "cutoff=" + std::to_string(cutoff));
    }

    bench::print_table_header("Ablation: fine-mode alpha", cols);
    for (double alpha : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        core::EngineConfig cfg = base;
        cfg.alpha = alpha;
        run_with(env, h, cfg, "alpha=" + bench::fmt_double(alpha, 0));
    }

    bench::print_table_header("Ablation: pre-sample pool share", cols);
    for (double share : {0.1, 0.2, 0.4, 0.6}) {
        core::EngineConfig cfg = base;
        cfg.presample_memory_fraction = share;
        run_with(env, h, cfg, "share=" + bench::fmt_double(share, 1));
    }

    bench::print_table_header("Ablation: loaded-block-as-presamples",
                              cols);
    {
        core::EngineConfig cfg = base;
        run_with(env, h, cfg, "on");
        cfg.use_loaded_block = false;
        run_with(env, h, cfg, "off");
    }
    return 0;
}
