#!/usr/bin/env bash
# Capture a benchmark snapshot: run the core ablation and the walk
# service throughput sweep, archiving their JSON reports under
# bench-results/<git-sha>/ so numbers stay comparable across commits.
#
# Usage: scripts/bench_snapshot.sh [output-dir]
#   BUILD_DIR               build tree holding the bench binaries
#                           (default: build)
#   NOSWALKER_BENCH_SCALE   twin scale forwarded to the benches
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SHA=$(git rev-parse --short HEAD 2>/dev/null || date +%s)
OUT=${1:-bench-results/$SHA}

for bin in ablation_core service_throughput micro_storage fig14_breakdown; do
    if [ ! -x "$BUILD_DIR/bench/$bin" ]; then
        echo "error: $BUILD_DIR/bench/$bin not built" \
             "(cmake --build $BUILD_DIR --target $bin)" >&2
        exit 1
    fi
done

mkdir -p "$OUT"
echo "== ablation_core =="
"$BUILD_DIR/bench/ablation_core" --json "$OUT/ablation_core.json"
echo "== service_throughput =="
"$BUILD_DIR/bench/service_throughput" --json "$OUT/service_throughput.json"
echo "== micro_storage (prefetch-depth ablation) =="
"$BUILD_DIR/bench/micro_storage" --benchmark_min_time=0.05 \
    --json "$OUT/micro_storage.json"
echo "== fig14_breakdown =="
"$BUILD_DIR/bench/fig14_breakdown" --json "$OUT/fig14_breakdown.json"
echo
echo "snapshot written to $OUT"
