#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then a
# ThreadSanitizer pass over the concurrent service/queue code.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== tier 1: ThreadSanitizer (service, queue, step pool, parallel stepping, prefetch, shards, step kernel, load planner, traffic fuzz) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS" --target noswalker_tests
# The 50-seed fuzz sweep stays in the full (fast) build; TSan runs the
# reduced seed sweep (TrafficModel.ReducedSeedSweepHoldsInvariants).
ctest --test-dir build-tsan -R 'Service|BlockingQueue|ThreadPool|ParallelStep|Prefetch|AsyncLoader|Reorder|SharedBlockCache|Sharded|Migration|MigrationOverlap|ShardPresample|StepKernel|LoadPlanner|PlanWindow|TrafficModel|Backpressure' -E 'FiftySeeded' --output-on-failure

echo
echo "== tier 1: prefetch smoke (reorder-window + depth ablations) =="
ctest --test-dir build -R 'Prefetch' --output-on-failure -j "$JOBS"
./build/bench/micro_storage --benchmark_filter=BM_SsdModelRequest --benchmark_min_time=0.01 >/dev/null

echo
echo "== tier 1: sharded smoke (cross-shard bit-identity + migration conservation) =="
ctest --test-dir build -R 'Sharded|Migration|ShardPlan' --output-on-failure -j "$JOBS"
./build/bench/shard_scaling >/dev/null

echo
echo "== tier 1: shard-overlap smoke (barrier vs overlapped bit-identity + shard presample) =="
ctest --test-dir build -R 'MigrationOverlap|ShardPresample' --output-on-failure -j "$JOBS"

echo
echo "== tier 1: cohort smoke (scalar vs cohort bit-identity + batch draws) =="
ctest --test-dir build -R 'StepKernel|AliasTableBatch' --output-on-failure -j "$JOBS"

echo
echo "== tier 1: plan-window smoke (greedy passthrough + bit-identity across windows) =="
ctest --test-dir build -R 'LoadPlanner|PlanWindow' --output-on-failure -j "$JOBS"

echo
echo "== tier 1: service-traffic fuzz smoke (seeded episodes + conservation invariants + tenant backpressure) =="
ctest --test-dir build -R 'FuzzService|TrafficModel|Backpressure' --output-on-failure -j "$JOBS"

echo
echo "tier 1 passed"
